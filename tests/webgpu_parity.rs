//! WebGPU-vs-CPU parity sweeps: the compute backend's tiled shared-memory
//! kernels accumulate in the reference order and its fused epilogues apply
//! the same scalar ops the unfused composition would, so every comparison
//! here is **bitwise** (`assert_eq!` on raw f32 values) — across
//! fused/unfused execution, f32 and U8-quantized weights, and the
//! planned / interpreted / pipelined execution paths.

use std::sync::Arc;
use webml::backend_webgpu::WebGpuBackend;
use webml::core::backend::{BinaryOp, UnaryOp};
use webml::core::conv_util::Padding;
use webml::core::cpu::CpuBackend;
use webml::core::quant::QuantParams;
use webml::core::FusedStep;
use webml::webgl_sim::devices::DeviceProfile;
use webml::webgpu_sim::WebGpuConfig;
use webml::{ops, Engine, Tensor};

/// Deterministic pseudo-random values in roughly [-2, 2] (xorshift).
fn data(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0) as f32
        })
        .collect()
}

fn cpu_engine() -> Engine {
    let e = Engine::new();
    e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
    e
}

fn webgpu_engine() -> Engine {
    let e = Engine::new();
    let b = WebGpuBackend::new(DeviceProfile::intel_iris_pro(), WebGpuConfig::default())
        .expect("profile exposes a WebGPU compute API");
    e.register_backend("webgpu", Arc::new(b), 1);
    e
}

/// Build the same graph on a CPU engine and a WebGPU engine, with fusion
/// both on and off, and require all four results bitwise-equal pairwise
/// per fusion mode (and fused-vs-unfused equal within each backend, since
/// every op used here has a bit-exact fused epilogue).
fn assert_parity(label: &str, build: &dyn Fn(&Engine) -> Tensor) {
    let cpu = cpu_engine();
    let gpu = webgpu_engine();
    for fusion in [true, false] {
        cpu.set_fusion_enabled(fusion);
        gpu.set_fusion_enabled(fusion);
        let want = build(&cpu).to_f32_vec().unwrap();
        let got = build(&gpu).to_f32_vec().unwrap();
        assert_eq!(got, want, "{label} (fusion={fusion}): webgpu must match cpu bitwise");
    }
}

const ACTIVATIONS: [Option<UnaryOp>; 4] =
    [None, Some(UnaryOp::Relu), Some(UnaryOp::Relu6), Some(UnaryOp::Sigmoid)];

#[test]
fn fused_matmul_parity_across_shapes_and_activations() {
    for (ti, &(m, k, n)) in [(1usize, 1usize, 1usize), (5, 7, 3), (17, 19, 18)].iter().enumerate() {
        for act in ACTIVATIONS {
            for with_bias in [false, true] {
                assert_parity(&format!("matmul {m}x{k}x{n} bias={with_bias}"), &|e| {
                    let a = e.tensor(data(m * k, 11 + ti as u64), vec![m, k]).unwrap();
                    let b = e.tensor(data(k * n, 23 + ti as u64), vec![k, n]).unwrap();
                    let bias = e.tensor_1d(&data(n, 37 + ti as u64)).unwrap();
                    let bias_opt = with_bias.then_some(&bias);
                    ops::fused_matmul(&a, &b, bias_opt, act, false, false).unwrap()
                });
            }
        }
    }
    // Transposed operands take a distinct staging path in the tiled kernel.
    assert_parity("matmul transposed", &|e| {
        let at = e.tensor(data(4 * 3, 53), vec![4, 3]).unwrap();
        let bt = e.tensor(data(5 * 4, 59), vec![5, 4]).unwrap();
        let bias = e.tensor_1d(&data(5, 61)).unwrap();
        ops::fused_matmul(&at, &bt, Some(&bias), Some(UnaryOp::Sigmoid), true, true).unwrap()
    });
}

#[test]
fn fused_conv_and_depthwise_parity() {
    for padding in [Padding::Same, Padding::Valid] {
        for strides in [(1usize, 1usize), (2, 2)] {
            assert_parity(&format!("conv2d {padding:?} {strides:?}"), &|e| {
                let x = e.tensor(data(5 * 5 * 3, 71), vec![1, 5, 5, 3]).unwrap();
                let w = e.tensor(data(3 * 3 * 3 * 4, 73), vec![3, 3, 3, 4]).unwrap();
                let bias = e.tensor_1d(&data(4, 79)).unwrap();
                ops::fused_conv2d(&x, &w, Some(&bias), Some(UnaryOp::Relu), strides, padding, (1, 1))
                    .unwrap()
            });
            assert_parity(&format!("dwconv {padding:?} {strides:?}"), &|e| {
                let x = e.tensor(data(5 * 5 * 2, 83), vec![1, 5, 5, 2]).unwrap();
                let w = e.tensor(data(3 * 3 * 2 * 2, 89), vec![3, 3, 2, 2]).unwrap();
                let bias = e.tensor_1d(&data(4, 97)).unwrap();
                ops::fused_depthwise_conv2d(
                    &x,
                    &w,
                    Some(&bias),
                    Some(UnaryOp::Relu6),
                    strides,
                    padding,
                    (1, 1),
                )
                .unwrap()
            });
        }
    }
}

#[test]
fn fused_elementwise_parity() {
    assert_parity("elementwise chain", &|e| {
        let x = e.tensor(data(2 * 3 * 4, 101), vec![2, 3, 4]).unwrap();
        let row = e.tensor(data(4, 103), vec![4]).unwrap();
        let col = e.tensor(data(3, 107), vec![1, 3, 1]).unwrap();
        ops::fused_elementwise(
            &x,
            &[&row, &col],
            &[
                FusedStep::Binary(BinaryOp::Mul, 0),
                FusedStep::Binary(BinaryOp::Add, 1),
                FusedStep::Unary(UnaryOp::Relu),
            ],
        )
        .unwrap()
    });
}

/// U8-quantized fused ops (per-tensor and per-channel params): fused mode
/// runs the dequant-free tiled kernels, unfused mode dequantizes and runs
/// the f32 composition — both must match the CPU backend bitwise.
#[test]
fn quantized_fused_ops_parity() {
    let codes: Vec<u8> = (0..7 * 3).map(|i| ((i * 37) % 256) as u8).collect();
    assert_parity("quant matmul per-tensor", &|e| {
        let a = e.tensor(data(5 * 7, 113), vec![5, 7]).unwrap();
        let b = e
            .quantized_tensor(codes.clone(), vec![7, 3], QuantParams::per_tensor(0.05, -3.0))
            .unwrap();
        let bias = e.tensor_1d(&data(3, 127)).unwrap();
        ops::fused_matmul_quant(&a, &b, Some(&bias), Some(UnaryOp::Relu), false, false).unwrap()
    });
    let wcodes: Vec<u8> = (0..3 * 3 * 3 * 4).map(|i| ((i * 29) % 256) as u8).collect();
    assert_parity("quant conv per-channel", &|e| {
        let x = e.tensor(data(6 * 6 * 3, 131), vec![1, 6, 6, 3]).unwrap();
        let w = e
            .quantized_tensor(
                wcodes.clone(),
                vec![3, 3, 3, 4],
                QuantParams::per_channel(
                    3,
                    vec![0.02, 0.04, 0.03, 0.05],
                    vec![-2.0, -1.5, -2.5, -1.0],
                ),
            )
            .unwrap();
        let bias = e.tensor_1d(&data(4, 137)).unwrap();
        ops::fused_conv2d_quant(&x, &w, Some(&bias), Some(UnaryOp::Relu6), (1, 1), Padding::Same, (1, 1))
            .unwrap()
    });
    let dcodes: Vec<u8> = (0..3 * 3 * 2 * 2).map(|i| ((i * 41) % 256) as u8).collect();
    assert_parity("quant depthwise per-tensor", &|e| {
        let x = e.tensor(data(5 * 5 * 2, 139), vec![1, 5, 5, 2]).unwrap();
        let w = e
            .quantized_tensor(dcodes.clone(), vec![3, 3, 2, 2], QuantParams::per_tensor(0.03, -2.0))
            .unwrap();
        ops::fused_depthwise_conv2d_quant(&x, &w, None, Some(UnaryOp::Relu), (1, 1), Padding::Same, (1, 1))
            .unwrap()
    });
}

/// Planned, interpreted, and pipelined execution on the webgpu backend must
/// all reproduce the CPU reference bitwise — the three dispatch paths run
/// the same kernels in the same order; only scheduling and readback differ.
#[test]
fn planned_interpreted_and_pipelined_match_cpu_bitwise() {
    use webml::models::graph_mlp;
    use webml::Shape;
    let spec = graph_mlp(12, &[24, 24], 5, 42);

    let cpu = cpu_engine();
    let ref_model = spec.build(&cpu).unwrap();
    let (vals, shape) = spec.example(3, 1);
    let xr = cpu.tensor(vals.clone(), Shape::new(shape.clone())).unwrap();
    let want = ref_model.execute(&[(&spec.input, &xr)], &[&spec.output]).unwrap()[0]
        .to_f32_vec()
        .unwrap();

    let gpu = webgpu_engine();
    let model = spec.build(&gpu).unwrap();
    let x = gpu.tensor(vals, Shape::new(shape)).unwrap();
    x.keep();
    let planned =
        model.execute(&[(&spec.input, &x)], &[&spec.output]).unwrap()[0].to_f32_vec().unwrap();
    assert_eq!(planned, want, "planned webgpu vs cpu");
    let interpreted = model.execute_interpreted(&[(&spec.input, &x)], &[&spec.output]).unwrap()[0]
        .to_f32_vec()
        .unwrap();
    assert_eq!(interpreted, want, "interpreted webgpu vs cpu");
    let pending = model.execute_pipelined(&[(&spec.input, &x)], &[&spec.output]).unwrap();
    let got = pending.wait().unwrap();
    assert_eq!(got[0].to_f32_vec(), want, "pipelined webgpu vs cpu");
}

/// Whole-model parity: a seeded MobileNet inference on webgpu equals the
/// CPU reference bitwise, fused and unfused.
#[test]
fn mobilenet_inference_matches_cpu_bitwise() {
    use webml::models::{Image, MobileNet, MobileNetConfig};
    let config = MobileNetConfig { input_size: 32, classes: 7, ..MobileNetConfig::small() };
    let infer = |e: &Engine, fused: bool| -> Vec<f32> {
        e.set_fusion_enabled(fused);
        let mut net = MobileNet::new(e, config).unwrap();
        let img = Image::synthetic_person(config.input_size, config.input_size);
        let input = img.to_normalized_tensor(e, config.input_size).unwrap();
        net.infer(&input).unwrap().to_f32_vec().unwrap()
    };
    let cpu = cpu_engine();
    let gpu = webgpu_engine();
    for fused in [true, false] {
        assert_eq!(
            infer(&gpu, fused),
            infer(&cpu, fused),
            "mobilenet logits (fused={fused}) must be bitwise identical"
        );
    }
}
