//! Property-based tests (proptest) on core invariants: broadcasting,
//! reshape data-sharing, matmul against the naive reference, quantization
//! error bounds, tidy leak-freedom, and the webgl packing/squeeze
//! optimizations being pure optimizations (identical results).

#![allow(clippy::field_reassign_with_default)] // ablations toggle single config fields

use proptest::prelude::*;
use std::sync::Arc;
use webml::backend_webgl::{WebGlBackend, WebGlConfig};
use webml::converter::Quantization;
use webml::webgl_sim::devices::DeviceProfile;
use webml::{ops, Engine};

fn cpu_engine() -> Engine {
    let e = Engine::new();
    e.register_backend("cpu", Arc::new(webml::core::cpu::CpuBackend::new()), 1);
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn reshape_round_trips_any_factorization(
        values in prop::collection::vec(-1e3f32..1e3, 1..64),
        split in 1usize..8,
    ) {
        let e = cpu_engine();
        let n = values.len();
        let t = e.tensor_1d(&values).unwrap();
        // Reshape to [d, n/d] for any divisor-ish split, padding ignored.
        let d = (split % n).max(1);
        if n % d == 0 {
            let r = ops::reshape(&t, vec![d, n / d]).unwrap();
            let back = ops::reshape(&r, vec![n]).unwrap();
            prop_assert_eq!(back.to_f32_vec().unwrap(), values);
            // No data copy happened.
            prop_assert_eq!(e.memory().num_data_buffers, 1);
        }
    }

    #[test]
    fn broadcast_add_commutes(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        let e = cpu_engine();
        let a = e.rand_uniform([rows, cols], -10.0, 10.0, seed).unwrap();
        let b = e.rand_uniform([cols], -10.0, 10.0, seed + 1).unwrap();
        let ab = ops::add(&a, &b).unwrap().to_f32_vec().unwrap();
        let ba = ops::add(&b, &a).unwrap().to_f32_vec().unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn matmul_matches_naive_reference(
        m in 1usize..8,
        k in 1usize..8,
        n in 1usize..8,
        seed in 0u64..1000,
    ) {
        let e = cpu_engine();
        let a = e.rand_uniform([m, k], -2.0, 2.0, seed).unwrap();
        let b = e.rand_uniform([k, n], -2.0, 2.0, seed + 7).unwrap();
        let fast = ops::matmul(&a, &b, false, false).unwrap().to_f32_vec().unwrap();
        let av = a.to_f32_vec().unwrap();
        let bv = b.to_f32_vec().unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += av[i * k + p] * bv[p * n + j];
                }
                prop_assert!((fast[i * n + j] - acc).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn quantization_error_is_bounded(
        values in prop::collection::vec(-100.0f32..100.0, 1..256),
    ) {
        for q in [Quantization::U8, Quantization::U16] {
            let (bytes, scale, min) = q.quantize("w", &values).unwrap();
            let back = q.dequantize(&bytes, scale, min).unwrap();
            let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let bound = q.max_error(lo, hi) * 1.02 + 1e-4;
            for (a, b) in values.iter().zip(&back) {
                prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
            }
        }
    }

    #[test]
    fn tidy_never_leaks(
        ops_count in 1usize..12,
        seed in 0u64..100,
    ) {
        let e = cpu_engine();
        let baseline = e.num_tensors();
        e.tidy(|| {
            let mut t = e.rand_uniform([8], -1.0, 1.0, seed).unwrap();
            for i in 0..ops_count {
                t = match i % 4 {
                    0 => ops::exp(&t).unwrap(),
                    1 => ops::relu(&t).unwrap(),
                    2 => ops::add(&t, &t).unwrap(),
                    _ => ops::reshape(&t, vec![2, 4]).unwrap()
                        .pipe(|r| ops::reshape(&r, vec![8]).unwrap()),
                };
            }
        });
        prop_assert_eq!(e.num_tensors(), baseline);
    }

    #[test]
    fn grad_of_sum_square_is_2x(values in prop::collection::vec(-10.0f32..10.0, 1..16)) {
        let e = cpu_engine();
        let x = e.tensor_1d(&values).unwrap();
        let g = e.grad(&x, || ops::sum(&ops::square(&x)?, None, false)).unwrap();
        let got = g.to_f32_vec().unwrap();
        for (v, g) in values.iter().zip(&got) {
            prop_assert!((g - 2.0 * v).abs() < 1e-3);
        }
    }
}

/// Tiny pipe helper for the tidy property test.
trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}
impl<T> Pipe for T {}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn packing_is_a_pure_optimization(
        n in 1usize..40,
        seed in 0u64..100,
    ) {
        // Packed (RGBA texel) and unpacked execution must agree exactly.
        let run = |packing: bool| -> Vec<f32> {
            let e = Engine::new();
            let mut config = WebGlConfig::default();
            config.packing = packing;
            let b = WebGlBackend::new(DeviceProfile::intel_iris_pro(), config).unwrap();
            e.register_backend("webgl", Arc::new(b), 2);
            let a = e.rand_uniform([n], -5.0, 5.0, seed).unwrap();
            let b2 = e.rand_uniform([n], -5.0, 5.0, seed + 1).unwrap();
            let y = ops::add(&ops::mul(&a, &b2).unwrap(), &a).unwrap();
            y.to_f32_vec().unwrap()
        };
        prop_assert_eq!(run(true), run(false));
    }

    #[test]
    fn squeeze_layout_is_a_pure_optimization(
        b in 1usize..3,
        h in 1usize..5,
        w in 1usize..5,
        seed in 0u64..100,
    ) {
        // Unit-dim squeezing changes only address math, never results.
        let run = |squeeze: bool| -> Vec<f32> {
            let e = Engine::new();
            let mut config = WebGlConfig::default();
            config.squeeze_layout = squeeze;
            let backend = WebGlBackend::new(DeviceProfile::intel_iris_pro(), config).unwrap();
            e.register_backend("webgl", Arc::new(backend), 2);
            // Shapes with unit dims, like the paper's 1x3x1x2 example.
            let x = e.rand_uniform([b, h, 1, w], -1.0, 1.0, seed).unwrap();
            let y = e.rand_uniform([1, h, 1, 1], -1.0, 1.0, seed + 3).unwrap();
            let z = ops::mul(&x, &y).unwrap();
            let t = ops::transpose(&z, Some(&[3, 1, 2, 0])).unwrap();
            t.to_f32_vec().unwrap()
        };
        prop_assert_eq!(run(true), run(false));
    }

    #[test]
    fn matmul_packed_agrees_with_unpacked_webgl(
        m in 1usize..10,
        k in 1usize..10,
        n in 1usize..10,
        seed in 0u64..50,
    ) {
        let run = |packing: bool| -> Vec<f32> {
            let e = Engine::new();
            let mut config = WebGlConfig::default();
            config.packing = packing;
            let backend = WebGlBackend::new(DeviceProfile::intel_iris_pro(), config).unwrap();
            e.register_backend("webgl", Arc::new(backend), 2);
            let a = e.rand_uniform([m, k], -1.0, 1.0, seed).unwrap();
            let b = e.rand_uniform([k, n], -1.0, 1.0, seed + 1).unwrap();
            ops::matmul(&a, &b, false, false).unwrap().to_f32_vec().unwrap()
        };
        prop_assert_eq!(run(true), run(false));
    }
}
