//! Memory-management semantics (paper Sec 3.7 and 4.1.2): manual
//! dispose/tidy under browser semantics, finalization under Node semantics,
//! refcounted data sharing, texture recycling, and the keep escape hatch.

use webml::{ops, MemoryPolicy};

#[test]
fn forgetting_dispose_leaks_like_a_browser() {
    // Under the Manual policy (browser), dropping handles does NOT free.
    let e = webml::new_engine();
    e.set_backend("webgl").unwrap();
    let before = e.memory().num_bytes;
    for _ in 0..10 {
        let t = e.tensor_1d(&[0.0; 256]).unwrap();
        let _sq = ops::square(&t).unwrap();
        // Both handles dropped here without dispose.
    }
    let after = e.memory().num_bytes;
    assert_eq!(after - before, 20 * 256 * 4, "every undisposed tensor leaks");
}

#[test]
fn tidy_disposes_intermediates_keeps_result() {
    let e = webml::new_engine();
    e.set_backend("webgl").unwrap();
    let baseline = e.num_tensors();
    let result = e.tidy(|| {
        let a = e.tensor_1d(&[1.0, 2.0]).unwrap();
        let b = ops::square(&a).unwrap();
        let c = ops::add(&a, &b).unwrap();
        let _unused = ops::exp(&c).unwrap();
        c
    });
    assert_eq!(e.num_tensors(), baseline + 1, "only the returned tensor survives");
    assert_eq!(result.to_f32_vec().unwrap(), vec![2.0, 6.0]);
    result.dispose();
    assert_eq!(e.num_tensors(), baseline);
}

#[test]
fn nested_tidy_moves_kept_to_parent() {
    let e = webml::new_engine();
    let baseline = e.num_tensors();
    e.tidy(|| {
        let inner = e.tidy(|| {
            let a = e.tensor_1d(&[1.0]).unwrap();
            ops::square(&a).unwrap()
        });
        // Inner result alive inside the outer scope.
        assert!(!inner.is_disposed());
        // Returning nothing from the outer tidy.
    });
    assert_eq!(e.num_tensors(), baseline, "outer tidy reclaims the inner result");
}

#[test]
fn keep_survives_tidy() {
    let e = webml::new_engine();
    let baseline = e.num_tensors();
    let mut kept_id = 0;
    e.tidy(|| {
        let a = e.tensor_1d(&[5.0]).unwrap();
        a.keep();
        kept_id = a.id();
    });
    assert_eq!(e.num_tensors(), baseline + 1);
    e.dispose_tensor(kept_id);
    assert_eq!(e.num_tensors(), baseline);
}

#[test]
fn dispose_is_idempotent_and_reads_fail_after() {
    let e = webml::new_engine();
    let a = e.tensor_1d(&[1.0]).unwrap();
    a.dispose();
    a.dispose();
    assert!(a.is_disposed());
    assert!(a.data_sync().is_err());
    assert!(ops::square(&a).is_err(), "ops on disposed tensors error");
}

#[test]
fn reshape_shares_data_and_refcounts() {
    let e = webml::new_engine();
    let a = e.tensor_1d(&[1.0, 2.0, 3.0, 4.0]).unwrap();
    let b = ops::reshape(&a, [2, 2]).unwrap();
    let c = ops::reshape(&b, [4, 1]).unwrap();
    let m = e.memory();
    assert_eq!(m.num_tensors, 3);
    assert_eq!(m.num_data_buffers, 1, "three views over one container");
    a.dispose();
    b.dispose();
    assert_eq!(c.to_f32_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    c.dispose();
    assert_eq!(e.memory().num_data_buffers, 0);
}

#[test]
fn finalized_policy_frees_on_drop() {
    let e = webml::new_engine();
    e.set_memory_policy(MemoryPolicy::Finalized);
    {
        let a = e.tensor_1d(&[1.0; 100]).unwrap();
        let _b = ops::exp(&a).unwrap();
    }
    assert_eq!(e.num_tensors(), 0, "Node-style finalization reclaims dropped handles");
}

#[test]
fn profile_reports_new_tensors_and_peak(){
    let e = webml::new_engine();
    let ((), info) = e.profile(|| {
        e.tidy(|| {
            let a = e.tensor_1d(&[0.0; 1024]).unwrap();
            let _b = ops::square(&a).unwrap();
            let _c = ops::exp(&a).unwrap();
        });
    });
    assert_eq!(info.new_tensors, 3);
    assert_eq!(info.new_bytes, 3 * 1024 * 4);
    assert!(info.peak_bytes >= 3 * 1024 * 4);
    assert!(info.kernels.iter().any(|k| k.name == "Square"));
    assert!(info.kernels.iter().any(|k| k.name == "Exp"));
}

#[test]
fn time_reports_kernel_time() {
    let e = webml::new_engine();
    e.set_backend("webgl").unwrap();
    let a = e.rand_uniform([64, 64], -1.0, 1.0, 1).unwrap();
    let (y, t) = e.time(|| ops::matmul(&a, &a, false, false).unwrap());
    let _ = y.to_f32_vec().unwrap();
    assert!(t.wall_ms >= 0.0);
    // Kernel (device) time is measured by the disjoint timer query.
    assert!(t.kernel_ms > 0.0);
}

#[test]
fn webgl_texture_recycling_hits_on_repeated_shapes() {
    // Sec 4.1.2: "multiple passes through the same ML model often generate
    // tensors of the same shapes" — the recycler turns those into hits.
    let e = webml::new_engine();
    e.set_backend("webgl").unwrap();
    let x = e.rand_uniform([32, 32], -1.0, 1.0, 1).unwrap();
    let pass = || {
        e.tidy(|| {
            let y = ops::matmul(&x, &x, false, false).unwrap();
            let z = ops::relu(&y).unwrap();
            let _ = z.data_sync().unwrap();
        })
    };
    pass();
    let before: f64 = e
        .memory()
        .backend
        .details
        .iter()
        .find(|(k, _)| k == "recycler_hits")
        .map(|(_, v)| *v)
        .unwrap();
    for _ in 0..3 {
        pass();
    }
    let after: f64 = e
        .memory()
        .backend
        .details
        .iter()
        .find(|(k, _)| k == "recycler_hits")
        .map(|(_, v)| *v)
        .unwrap();
    assert!(after >= before + 6.0, "3 passes x 2 same-shape textures: {before} -> {after}");
}

#[test]
fn nan_debug_mode_names_offending_kernel() {
    // Paper Sec 3.8: "throwing an exception at the first line a NaN is
    // introduced, showing model developers which operation is the source".
    let e = webml::new_engine();
    e.set_debug(true);
    let a = e.tensor_1d(&[-1.0]).unwrap();
    let sq = ops::sqrt(&a); // sqrt(-1) = NaN
    match sq {
        Err(webml::Error::NanDetected { kernel }) => assert_eq!(kernel, "Sqrt"),
        other => panic!("expected NanDetected, got {other:?}"),
    }
    // Healthy ops pass.
    let b = e.tensor_1d(&[4.0]).unwrap();
    assert_eq!(ops::sqrt(&b).unwrap().to_f32_vec().unwrap(), vec![2.0]);
    e.set_debug(false);
}
