//! Cross-backend consistency: every backend (plainjs, cpu, webgl, native)
//! must produce numerically matching results for the same op graph — the
//! property TensorFlow.js guarantees across its plain-JS/WebGL/Node
//! implementations (paper Sec 3.4).

use webml::core::conv_util::Padding;
use webml::{ops, DType, Engine, Tensor};

const BACKENDS: [&str; 4] = ["plainjs", "cpu", "webgl", "native"];

fn on_each_backend(f: impl Fn(&Engine) -> Vec<f32>) -> Vec<(String, Vec<f32>)> {
    BACKENDS
        .iter()
        .map(|name| {
            let e = webml::new_engine();
            e.set_backend(name).expect("backend registered");
            (name.to_string(), f(&e))
        })
        .collect()
}

fn assert_all_agree(results: &[(String, Vec<f32>)], tol: f32) {
    let (ref_name, reference) = &results[0];
    for (name, values) in &results[1..] {
        assert_eq!(values.len(), reference.len(), "{name} vs {ref_name} length");
        for (i, (a, b)) in values.iter().zip(reference).enumerate() {
            assert!(
                (a - b).abs() <= tol,
                "{name}[{i}] = {a} differs from {ref_name}[{i}] = {b}"
            );
        }
    }
}

#[test]
fn elementwise_chain_agrees() {
    let results = on_each_backend(|e| {
        let a = e.rand_uniform([64], -2.0, 2.0, 7).unwrap();
        let b = e.rand_uniform([64], 0.5, 2.0, 8).unwrap();
        let y = ops::add(
            &ops::mul(&ops::sigmoid(&a).unwrap(), &b).unwrap(),
            &ops::relu(&ops::neg(&a).unwrap()).unwrap(),
        )
        .unwrap();
        y.to_f32_vec().unwrap()
    });
    assert_all_agree(&results, 1e-5);
}

#[test]
fn broadcast_binary_agrees() {
    let results = on_each_backend(|e| {
        let a = e.rand_uniform([4, 1, 6], -1.0, 1.0, 1).unwrap();
        let b = e.rand_uniform([5, 1], -1.0, 1.0, 2).unwrap();
        ops::sub(&a, &b).unwrap().to_f32_vec().unwrap()
    });
    assert_all_agree(&results, 1e-6);
}

#[test]
fn matmul_agrees() {
    let results = on_each_backend(|e| {
        let a = e.rand_uniform([17, 23], -1.0, 1.0, 3).unwrap();
        let b = e.rand_uniform([23, 11], -1.0, 1.0, 4).unwrap();
        ops::matmul(&a, &b, false, false).unwrap().to_f32_vec().unwrap()
    });
    assert_all_agree(&results, 1e-3);
}

#[test]
fn matmul_transposes_agree() {
    for (ta, tb) in [(true, false), (false, true), (true, true)] {
        let results = on_each_backend(|e| {
            let a_dims = if ta { [9, 7] } else { [7, 9] };
            let b_dims = if tb { [5, 9] } else { [9, 5] };
            let a = e.rand_uniform(a_dims, -1.0, 1.0, 5).unwrap();
            let b = e.rand_uniform(b_dims, -1.0, 1.0, 6).unwrap();
            ops::matmul(&a, &b, ta, tb).unwrap().to_f32_vec().unwrap()
        });
        assert_all_agree(&results, 1e-4);
    }
}

#[test]
fn conv_pool_pipeline_agrees() {
    let results = on_each_backend(|e| {
        let x = e.rand_uniform([1, 10, 10, 3], -1.0, 1.0, 9).unwrap();
        let w = e.rand_uniform([3, 3, 3, 8], -0.5, 0.5, 10).unwrap();
        let y = ops::conv2d(&x, &w, (2, 2), Padding::Same, (1, 1)).unwrap();
        let p = ops::max_pool(&y, (2, 2), (2, 2), Padding::Valid).unwrap();
        let a = ops::avg_pool(&y, (2, 2), (1, 1), Padding::Same).unwrap();
        let mut out = p.to_f32_vec().unwrap();
        out.extend(a.to_f32_vec().unwrap());
        out
    });
    assert_all_agree(&results, 1e-4);
}

#[test]
fn depthwise_conv_agrees() {
    let results = on_each_backend(|e| {
        let x = e.rand_uniform([2, 8, 8, 4], -1.0, 1.0, 11).unwrap();
        let w = e.rand_uniform([3, 3, 4, 2], -0.5, 0.5, 12).unwrap();
        ops::depthwise_conv2d(&x, &w, (1, 1), Padding::Same, (1, 1))
            .unwrap()
            .to_f32_vec()
            .unwrap()
    });
    assert_all_agree(&results, 1e-4);
}

#[test]
fn reductions_agree() {
    let results = on_each_backend(|e| {
        let x = e.rand_uniform([4, 5, 6], -2.0, 2.0, 13).unwrap();
        let mut out = ops::sum(&x, Some(&[1]), false).unwrap().to_f32_vec().unwrap();
        out.extend(ops::mean(&x, Some(&[0, 2]), false).unwrap().to_f32_vec().unwrap());
        out.extend(ops::max(&x, None, false).unwrap().to_f32_vec().unwrap());
        out.extend(ops::argmax(&x, 2).unwrap().to_f32_vec().unwrap());
        out
    });
    assert_all_agree(&results, 1e-4);
}

#[test]
fn softmax_and_xent_agree() {
    let results = on_each_backend(|e| {
        let logits = e.rand_uniform([8, 10], -3.0, 3.0, 14).unwrap();
        let labels = e.one_hot(&e.tensor((0..8).collect::<Vec<i32>>(), [8]).unwrap(), 10).unwrap();
        let mut out = ops::softmax(&logits).unwrap().to_f32_vec().unwrap();
        out.extend(ops::softmax_cross_entropy(&labels, &logits).unwrap().to_f32_vec().unwrap());
        out
    });
    assert_all_agree(&results, 1e-5);
}

#[test]
fn shape_ops_agree() {
    let results = on_each_backend(|e| {
        let x = e.rand_uniform([3, 4, 5], -1.0, 1.0, 15).unwrap();
        let mut out = ops::transpose(&x, Some(&[2, 0, 1])).unwrap().to_f32_vec().unwrap();
        out.extend(ops::slice(&x, &[1, 0, 2], &[2, 3, 3]).unwrap().to_f32_vec().unwrap());
        out.extend(ops::pad(&x, &[(1, 0), (0, 1), (2, 2)], 0.5).unwrap().to_f32_vec().unwrap());
        out.extend(ops::reverse(&x, &[1]).unwrap().to_f32_vec().unwrap());
        out.extend(ops::tile(&x, &[1, 2, 1]).unwrap().to_f32_vec().unwrap());
        let a = ops::slice(&x, &[0, 0, 0], &[1, 4, 5]).unwrap();
        let b = ops::slice(&x, &[1, 0, 0], &[2, 4, 5]).unwrap();
        out.extend(ops::concat(&[&a, &b], 0).unwrap().to_f32_vec().unwrap());
        out
    });
    assert_all_agree(&results, 1e-6);
}

#[test]
fn gather_select_one_hot_agree() {
    let results = on_each_backend(|e| {
        let x = e.rand_uniform([6, 3], -1.0, 1.0, 16).unwrap();
        let ix = e.tensor(vec![5i32, 0, 3], [3]).unwrap();
        let mut out = ops::gather(&x, &ix, 0).unwrap().to_f32_vec().unwrap();
        let cond = ops::greater(&x, &e.scalar(0.0).unwrap()).unwrap();
        out.extend(
            ops::select(&cond, &x, &ops::neg(&x).unwrap()).unwrap().to_f32_vec().unwrap(),
        );
        out.extend(e.one_hot(&ix, 7).unwrap().to_f32_vec().unwrap());
        out
    });
    assert_all_agree(&results, 1e-6);
}

#[test]
fn resize_and_cast_agree() {
    let results = on_each_backend(|e| {
        let x = e.rand_uniform([1, 5, 7, 2], 0.0, 10.0, 17).unwrap();
        let mut out = ops::resize_bilinear(&x, 9, 4, false).unwrap().to_f32_vec().unwrap();
        out.extend(ops::resize_bilinear(&x, 10, 14, true).unwrap().to_f32_vec().unwrap());
        out.extend(ops::cast(&x, DType::I32).unwrap().to_f32_vec().unwrap());
        out
    });
    assert_all_agree(&results, 1e-4);
}

#[test]
fn gradients_agree_across_backends() {
    let results = on_each_backend(|e| {
        let x = e.rand_uniform([4, 4], -1.0, 1.0, 18).unwrap();
        let w = e.rand_uniform([4, 4], -1.0, 1.0, 19).unwrap();
        let grads = e
            .grads(&[&x, &w], || {
                let y = ops::matmul(&x, &w, false, false)?;
                ops::sum(&ops::sigmoid(&y)?, None, false)
            })
            .unwrap();
        let mut out = grads[0].to_f32_vec().unwrap();
        out.extend(grads[1].to_f32_vec().unwrap());
        out
    });
    assert_all_agree(&results, 1e-4);
}

#[test]
fn conv_training_gradients_agree() {
    let results = on_each_backend(|e| {
        let x = e.rand_uniform([1, 6, 6, 2], -1.0, 1.0, 20).unwrap();
        let w = e.rand_uniform([3, 3, 2, 4], -0.5, 0.5, 21).unwrap();
        let grads = e
            .grads(&[&w], || {
                let y = ops::conv2d(&x, &w, (1, 1), Padding::Same, (1, 1))?;
                ops::sum(&ops::mul(&y, &y)?, None, false)
            })
            .unwrap();
        grads[0].to_f32_vec().unwrap()
    });
    assert_all_agree(&results, 1e-2);
}

#[test]
fn migration_between_backends_preserves_data() {
    // A tensor created on one backend is transparently moved when used on
    // another (tfjs moveData semantics).
    let e = webml::new_engine();
    e.set_backend("cpu").unwrap();
    let a = e.tensor_1d(&[1.0, 2.0, 3.0]).unwrap();
    e.set_backend("webgl").unwrap();
    let b = e.tensor_1d(&[10.0, 20.0, 30.0]).unwrap();
    let c = ops::add(&a, &b).unwrap();
    assert_eq!(c.to_f32_vec().unwrap(), vec![11.0, 22.0, 33.0]);
    e.set_backend("native").unwrap();
    let d: Tensor = ops::mul(&c, &c).unwrap();
    assert_eq!(d.to_f32_vec().unwrap(), vec![121.0, 484.0, 1089.0]);
}

#[test]
fn depthwise_training_gradients_agree() {
    let results = on_each_backend(|e| {
        let x = e.rand_uniform([1, 6, 6, 3], -1.0, 1.0, 22).unwrap();
        let w = e.rand_uniform([3, 3, 3, 2], -0.5, 0.5, 23).unwrap();
        let grads = e
            .grads(&[&x, &w], || {
                let y = ops::depthwise_conv2d(&x, &w, (1, 1), Padding::Same, (1, 1))?;
                ops::sum(&ops::mul(&y, &y)?, None, false)
            })
            .unwrap();
        let mut out = grads[0].to_f32_vec().unwrap();
        out.extend(grads[1].to_f32_vec().unwrap());
        out
    });
    assert_all_agree(&results, 1e-2);
}

#[test]
fn pool_gradients_agree() {
    let results = on_each_backend(|e| {
        let x = e.rand_uniform([1, 8, 8, 2], -1.0, 1.0, 24).unwrap();
        let g_max = e
            .grads(&[&x], || {
                let y = ops::max_pool(&x, (2, 2), (2, 2), Padding::Valid)?;
                ops::sum(&ops::mul(&y, &y)?, None, false)
            })
            .unwrap();
        let g_avg = e
            .grads(&[&x], || {
                let y = ops::avg_pool(&x, (3, 3), (2, 2), Padding::Same)?;
                ops::sum(&y, None, false)
            })
            .unwrap();
        let mut out = g_max[0].to_f32_vec().unwrap();
        out.extend(g_avg[0].to_f32_vec().unwrap());
        out
    });
    assert_all_agree(&results, 1e-4);
}

#[test]
fn batch_norm_and_softmax_training_agree() {
    let results = on_each_backend(|e| {
        let x = e.rand_uniform([4, 6], -2.0, 2.0, 25).unwrap();
        let gamma = e.rand_uniform([6], 0.5, 1.5, 26).unwrap();
        let labels = e.one_hot(&e.tensor((0..4).collect::<Vec<i32>>(), [4]).unwrap(), 6).unwrap();
        let grads = e
            .grads(&[&x, &gamma], || {
                let (m, v) = ops::moments(&x, Some(&[0]), false)?;
                let normed = ops::batch_norm(&x, &m, &v, None, Some(&gamma), 1e-3)?;
                ops::mean(&ops::softmax_cross_entropy(&labels, &normed)?, None, false)
            })
            .unwrap();
        let mut out = grads[0].to_f32_vec().unwrap();
        out.extend(grads[1].to_f32_vec().unwrap());
        out
    });
    assert_all_agree(&results, 1e-3);
}

#[test]
fn new_ops_agree_across_backends() {
    let results = on_each_backend(|e| {
        let x = e.rand_uniform([5, 7], -2.0, 2.0, 27).unwrap();
        let mut out = ops::erf(&x).unwrap().to_f32_vec().unwrap();
        out.extend(ops::gelu(&x).unwrap().to_f32_vec().unwrap());
        out.extend(ops::cumsum(&x, 1).unwrap().to_f32_vec().unwrap());
        let alpha = e.scalar(0.2).unwrap();
        out.extend(ops::prelu(&x, &alpha).unwrap().to_f32_vec().unwrap());
        out
    });
    assert_all_agree(&results, 1e-4);
}
