//! # WebML
//!
//! A Rust reproduction of *TensorFlow.js: Machine Learning for the Web and
//! Beyond* (Smilkov et al., SysML 2019): an eager tensor engine with
//! automatic differentiation, a Keras-style Layers API, a model converter,
//! a pretrained-style models repo — and, underneath, a faithful software
//! simulation of the WebGL GPGPU execution model the paper repurposes for
//! numeric computing.
//!
//! ## Backends
//!
//! [`init`] registers four backends on the global engine, mirroring
//! Figure 1 of the paper:
//!
//! | name       | analogue                         | priority |
//! |------------|----------------------------------|----------|
//! | `plainjs`  | interpreted plain-JS CPU baseline| 0        |
//! | `cpu`      | bundled reference CPU fallback   | 1        |
//! | `webgl`    | WebGL fragment-shader GPGPU      | 2        |
//! | `native`   | Node.js binding to TensorFlow C  | 3        |
//!
//! The highest-priority registered backend is the default, as in
//! TensorFlow.js; switch with [`Engine::set_backend`].
//!
//! ## Quickstart (Listing 1 of the paper)
//!
//! ```
//! use webml::prelude::*;
//!
//! # fn main() -> webml::Result<()> {
//! let engine = webml::init();
//! let mut model = Sequential::new(&engine);
//! model.add(Dense::new(1).with_input_dim(1));
//! model.compile(Loss::MeanSquaredError, Box::new(Sgd::new(0.1)));
//! let xs = engine.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 4, 1)?;
//! let ys = engine.tensor_2d(&[1.0, 3.0, 5.0, 7.0], 4, 1)?;
//! model.fit(&xs, &ys, FitConfig { epochs: 100, batch_size: 4, ..Default::default() })?;
//! let pred = model.predict(&engine.tensor_2d(&[5.0], 1, 1)?)?;
//! assert!((pred.to_scalar()? - 9.0).abs() < 0.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use webml_backend_cpu as backend_cpu;
pub use webml_backend_native as backend_native;
pub use webml_backend_webgl as backend_webgl;
pub use webml_converter as converter;
pub use webml_core as core;
pub use webml_data as data;
pub use webml_layers as layers;
pub use webml_models as models;
pub use webml_serve as serve;
pub use webml_telemetry as telemetry;
pub use webml_webgl_sim as webgl_sim;

pub use webml_core::{
    ops, DType, DegradationEvent, Engine, Error, MemoryPolicy, Result, Shape, Tensor, TensorData,
    Variable,
};
pub use webml_webgl_sim::{ContextLossEvent, FaultPlan};

use std::sync::Arc;
use std::sync::OnceLock;
use webml_backend_cpu::PlainJsBackend;
use webml_backend_native::NativeBackend;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_webgl_sim::devices::DeviceProfile;
use webml_webgl_sim::pager::PagingPolicy;

/// Commonly used items, for `use webml::prelude::*`.
pub mod prelude {
    pub use webml_core::{ops, DType, Engine, Shape, Tensor, Variable};
    pub use webml_layers::{
        Activation, Adam, Conv2D, Dense, DepthwiseConv2D, Dropout, FitConfig, Flatten,
        GlobalAveragePooling2D, Loss, MaxPooling2D, Metric, Momentum, RmsProp, Sequential, Sgd,
    };
    pub use webml_models::{Image, KnnClassifier, MobileNet, MobileNetConfig, PoseNet};
}

static INITED: OnceLock<Engine> = OnceLock::new();

/// Create a *fresh, private* engine with all four backends registered —
/// unlike [`init`], nothing is shared. Useful for tests and for embedding
/// several independent engines in one process.
pub fn new_engine() -> Engine {
    let engine = Engine::new();
    engine.register_backend("cpu", Arc::new(webml_core::cpu::CpuBackend::new()), 1);
    engine.register_backend("plainjs", Arc::new(PlainJsBackend::new()), 0);
    if let Ok(webgl) = WebGlBackend::new(DeviceProfile::intel_iris_pro(), WebGlConfig::default()) {
        engine.register_backend("webgl", Arc::new(webgl), 2);
    }
    engine.register_backend("native", Arc::new(NativeBackend::new()), 3);
    engine
}

/// Create a fresh, private engine whose `webgl` backend injects faults
/// according to `plan`, with the reference `cpu` backend registered below
/// it as the degradation target. The `webgl` backend is the default, so
/// kernels hit the faulty device first and the engine's graceful
/// degradation (retry, then fall back down the priority chain) can be
/// observed via [`Engine::degradations`] and `Engine::memory()`.
pub fn new_engine_with_faults(plan: FaultPlan) -> Engine {
    let engine = Engine::new();
    engine.register_backend("cpu", Arc::new(webml_core::cpu::CpuBackend::new()), 1);
    if let Ok(webgl) =
        WebGlBackend::with_faults(DeviceProfile::intel_iris_pro(), WebGlConfig::default(), plan)
    {
        engine.register_backend("webgl", Arc::new(webgl), 2);
    }
    engine
}

/// Initialize the global engine with every backend registered (idempotent)
/// and return it. The `native` backend becomes the default.
pub fn init() -> Engine {
    INITED
        .get_or_init(|| {
            let engine = webml_core::global::engine();
            engine.register_backend("plainjs", Arc::new(PlainJsBackend::new()), 0);
            let config =
                WebGlConfig { paging: PagingPolicy::from_screen(1920, 1080), ..Default::default() };
            if let Ok(webgl) = WebGlBackend::new(DeviceProfile::intel_iris_pro(), config) {
                engine.register_backend("webgl", Arc::new(webgl), 2);
            }
            engine.register_backend("native", Arc::new(NativeBackend::new()), 3);
            engine
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_registers_all_backends_with_native_default() {
        let e = init();
        let names = e.backend_names();
        for expected in ["cpu", "plainjs", "webgl", "native"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
        // Highest priority wins.
        assert_eq!(e.backend_name(), "native");
        // Idempotent.
        let e2 = init();
        assert_eq!(e, e2);
    }

    #[test]
    fn ops_run_on_every_backend() {
        let e = init();
        let original = e.backend_name();
        for name in ["plainjs", "cpu", "webgl", "native"] {
            e.set_backend(name).unwrap();
            let a = e.tensor_1d(&[1.0, 2.0]).unwrap();
            let b = e.tensor_1d(&[3.0, 4.0]).unwrap();
            let c = ops::add(&a, &b).unwrap();
            assert_eq!(c.to_f32_vec().unwrap(), vec![4.0, 6.0], "backend {name}");
            a.dispose();
            b.dispose();
            c.dispose();
        }
        e.set_backend(&original).unwrap();
    }
}
