//! # WebML
//!
//! A Rust reproduction of *TensorFlow.js: Machine Learning for the Web and
//! Beyond* (Smilkov et al., SysML 2019): an eager tensor engine with
//! automatic differentiation, a Keras-style Layers API, a model converter,
//! a pretrained-style models repo — and, underneath, a faithful software
//! simulation of the WebGL GPGPU execution model the paper repurposes for
//! numeric computing.
//!
//! ## Backends
//!
//! [`init`] registers five backends on the global engine, mirroring
//! Figure 1 of the paper plus the compute-API future work of Sec 4.3:
//!
//! | name       | analogue                           | priority |
//! |------------|------------------------------------|----------|
//! | `plainjs`  | interpreted plain-JS CPU baseline  | 0        |
//! | `cpu`      | bundled reference CPU fallback     | 1        |
//! | `webgl`    | WebGL fragment-shader GPGPU        | 2        |
//! | `webgpu`   | WebGPU compute-shader GPGPU        | 3        |
//! | `native`   | Node.js binding to TensorFlow C    | 4        |
//!
//! The highest-priority registered backend is the default, as in
//! TensorFlow.js; switch with [`Engine::set_backend`]. The `webgpu` rung is
//! only registered when the device profile exposes a WebGPU-class compute
//! API ([`webml_webgl_sim::devices::DeviceProfile::has_webgpu`]); in the
//! browser-side degradation ladder a lost webgpu device falls back to
//! webgl, then cpu (`webgpu → webgl → cpu`), and
//! [`Engine::promote_backend`] climbs back after canary re-admission.
//!
//! ## Quickstart (Listing 1 of the paper)
//!
//! ```
//! use webml::prelude::*;
//!
//! # fn main() -> webml::Result<()> {
//! let engine = webml::init();
//! let mut model = Sequential::new(&engine);
//! model.add(Dense::new(1).with_input_dim(1));
//! model.compile(Loss::MeanSquaredError, Box::new(Sgd::new(0.1)));
//! let xs = engine.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 4, 1)?;
//! let ys = engine.tensor_2d(&[1.0, 3.0, 5.0, 7.0], 4, 1)?;
//! model.fit(&xs, &ys, FitConfig { epochs: 100, batch_size: 4, ..Default::default() })?;
//! let pred = model.predict(&engine.tensor_2d(&[5.0], 1, 1)?)?;
//! assert!((pred.to_scalar()? - 9.0).abs() < 0.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use webml_backend_cpu as backend_cpu;
pub use webml_backend_native as backend_native;
pub use webml_backend_webgl as backend_webgl;
pub use webml_backend_webgpu as backend_webgpu;
pub use webml_converter as converter;
pub use webml_core as core;
pub use webml_data as data;
pub use webml_layers as layers;
pub use webml_models as models;
pub use webml_serve as serve;
pub use webml_telemetry as telemetry;
pub use webml_webgl_sim as webgl_sim;
pub use webml_webgpu_sim as webgpu_sim;

pub use webml_core::{
    ops, DType, DegradationEvent, Engine, Error, MemoryPolicy, Result, Shape, Tensor, TensorData,
    Variable,
};
pub use webml_webgl_sim::{ContextLossEvent, FaultPlan};

use std::sync::Arc;
use std::sync::OnceLock;
use webml_backend_cpu::PlainJsBackend;
use webml_backend_native::NativeBackend;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_backend_webgpu::WebGpuBackend;
use webml_webgl_sim::devices::DeviceProfile;
use webml_webgl_sim::pager::PagingPolicy;
use webml_webgpu_sim::WebGpuConfig;

/// Commonly used items, for `use webml::prelude::*`.
pub mod prelude {
    pub use webml_core::{ops, DType, Engine, Shape, Tensor, Variable};
    pub use webml_layers::{
        Activation, Adam, Conv2D, Dense, DepthwiseConv2D, Dropout, FitConfig, Flatten,
        GlobalAveragePooling2D, Loss, MaxPooling2D, Metric, Momentum, RmsProp, Sequential, Sgd,
    };
    pub use webml_models::{Image, KnnClassifier, MobileNet, MobileNetConfig, PoseNet};
}

static INITED: OnceLock<Engine> = OnceLock::new();

/// Create a *fresh, private* engine with all five backends registered —
/// unlike [`init`], nothing is shared. Useful for tests and for embedding
/// several independent engines in one process. The `webgpu` rung is only
/// registered when the device profile supports it.
pub fn new_engine() -> Engine {
    new_engine_on(DeviceProfile::intel_iris_pro())
}

/// [`new_engine`] on a specific device profile: GPU-class backends that the
/// profile cannot host (no WebGL context, no WebGPU compute API) are simply
/// not registered, so the degradation ladder is exactly what the device
/// supports — this is how fleet placement avoids offering `webgpu` on
/// older iOS/Android profiles.
pub fn new_engine_on(profile: DeviceProfile) -> Engine {
    let engine = Engine::new();
    engine.register_backend("cpu", Arc::new(webml_core::cpu::CpuBackend::new()), 1);
    engine.register_backend("plainjs", Arc::new(PlainJsBackend::new()), 0);
    if let Ok(webgl) = WebGlBackend::new(profile.clone(), WebGlConfig::default()) {
        engine.register_backend("webgl", Arc::new(webgl), 2);
    }
    if let Ok(webgpu) = WebGpuBackend::new(profile, WebGpuConfig::default()) {
        engine.register_backend("webgpu", Arc::new(webgpu), 3);
    }
    engine.register_backend("native", Arc::new(NativeBackend::new()), 4);
    engine
}

/// Create a fresh, private engine whose `webgl` backend injects faults
/// according to `plan`, with the reference `cpu` backend registered below
/// it as the degradation target. The `webgl` backend is the default, so
/// kernels hit the faulty device first and the engine's graceful
/// degradation (retry, then fall back down the priority chain) can be
/// observed via [`Engine::degradations`] and `Engine::memory()`.
pub fn new_engine_with_faults(plan: FaultPlan) -> Engine {
    let engine = Engine::new();
    engine.register_backend("cpu", Arc::new(webml_core::cpu::CpuBackend::new()), 1);
    if let Ok(webgl) =
        WebGlBackend::with_faults(DeviceProfile::intel_iris_pro(), WebGlConfig::default(), plan)
    {
        engine.register_backend("webgl", Arc::new(webgl), 2);
    }
    engine
}

/// Create a fresh, private engine whose `webgpu` backend injects faults
/// according to `plan`, with healthy `webgl` and reference `cpu` backends
/// registered below it — the full three-rung degradation ladder
/// `webgpu → webgl → cpu`. The faulty `webgpu` backend is the default, so
/// a seeded device loss walks the ladder exactly as a browser losing its
/// WebGPU device would, with no caller-visible errors. Both substrates
/// share one seedable [`FaultPlan`] vocabulary, so the same soak seed can
/// drive either rung.
pub fn new_engine_with_webgpu_faults(plan: FaultPlan) -> Engine {
    let engine = Engine::new();
    engine.register_backend("cpu", Arc::new(webml_core::cpu::CpuBackend::new()), 1);
    if let Ok(webgl) = WebGlBackend::new(DeviceProfile::intel_iris_pro(), WebGlConfig::default()) {
        engine.register_backend("webgl", Arc::new(webgl), 2);
    }
    if let Ok(webgpu) =
        WebGpuBackend::with_faults(DeviceProfile::intel_iris_pro(), WebGpuConfig::default(), plan)
    {
        engine.register_backend("webgpu", Arc::new(webgpu), 3);
    }
    engine
}

/// Initialize the global engine with every backend registered (idempotent)
/// and return it. The `native` backend becomes the default.
pub fn init() -> Engine {
    INITED
        .get_or_init(|| {
            let engine = webml_core::global::engine();
            engine.register_backend("plainjs", Arc::new(PlainJsBackend::new()), 0);
            let config =
                WebGlConfig { paging: PagingPolicy::from_screen(1920, 1080), ..Default::default() };
            if let Ok(webgl) = WebGlBackend::new(DeviceProfile::intel_iris_pro(), config) {
                engine.register_backend("webgl", Arc::new(webgl), 2);
            }
            if let Ok(webgpu) =
                WebGpuBackend::new(DeviceProfile::intel_iris_pro(), WebGpuConfig::default())
            {
                engine.register_backend("webgpu", Arc::new(webgpu), 3);
            }
            engine.register_backend("native", Arc::new(NativeBackend::new()), 4);
            engine
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_registers_all_backends_with_native_default() {
        let e = init();
        let names = e.backend_names();
        for expected in ["cpu", "plainjs", "webgl", "webgpu", "native"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
        // Highest priority wins.
        assert_eq!(e.backend_name(), "native");
        // Idempotent.
        let e2 = init();
        assert_eq!(e, e2);
    }

    #[test]
    fn webgpu_rung_follows_device_profile_support() {
        let modern = new_engine_on(DeviceProfile::intel_iris_pro());
        let ladder = modern.backend_ladder();
        assert_eq!(
            ladder.iter().map(String::as_str).collect::<Vec<_>>(),
            vec!["native", "webgpu", "webgl", "cpu", "plainjs"],
        );
        // Profiles without a WebGPU-class compute API never get the rung,
        // so fleet placement cannot route webgpu work to them.
        let legacy = new_engine_on(DeviceProfile::ios_safari());
        assert!(!legacy.backend_names().contains(&"webgpu".to_string()));
        assert!(legacy.backend_names().contains(&"webgl".to_string()));
    }

    #[test]
    fn seeded_webgpu_loss_degrades_to_webgl_without_caller_errors() {
        let e = new_engine_with_webgpu_faults(FaultPlan::from_seed(7).lose_context_at(1));
        assert_eq!(e.backend_name(), "webgpu");
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let b = e.tensor_2d(&[5.0, 6.0, 7.0, 8.0], 2, 2).unwrap();
        // The first dispatch loses the webgpu device; the engine must land
        // the kernel on the webgl rung with no error surfaced to us.
        let c = ops::matmul(&a, &b, false, false).unwrap();
        assert_eq!(c.to_f32_vec().unwrap(), vec![19.0, 22.0, 43.0, 50.0]);
        assert_eq!(e.backend_name(), "webgl");
        let events = e.degradation_events();
        assert!(!events.is_empty());
        assert_eq!(events[0].from_backend, "webgpu");
        assert_eq!(events[0].to_backend, "webgl");
    }

    #[test]
    fn ops_run_on_every_backend() {
        let e = init();
        let original = e.backend_name();
        for name in ["plainjs", "cpu", "webgl", "webgpu", "native"] {
            e.set_backend(name).unwrap();
            let a = e.tensor_1d(&[1.0, 2.0]).unwrap();
            let b = e.tensor_1d(&[3.0, 4.0]).unwrap();
            let c = ops::add(&a, &b).unwrap();
            assert_eq!(c.to_f32_vec().unwrap(), vec![4.0, 6.0], "backend {name}");
            a.dispose();
            b.dispose();
            c.dispose();
        }
        e.set_backend(&original).unwrap();
    }
}
