//! Quickstart: Listing 1 of the paper — build a single-layer linear model
//! with the Layers API, train it on synthetic data, and predict an unseen
//! point.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use webml::prelude::*;

fn main() -> webml::Result<()> {
    let engine = webml::init();
    println!("backend: {}", engine.backend_name());

    // A linear model with 1 dense layer.
    let mut model = Sequential::new(&engine);
    model.add(Dense::new(1).with_input_dim(1));

    // Specify the loss and the optimizer.
    model.compile(Loss::MeanSquaredError, Box::new(Sgd::new(0.1)));

    // Generate synthetic data to train: y = 2x - 1.
    let xs = engine.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 4, 1)?;
    let ys = engine.tensor_2d(&[1.0, 3.0, 5.0, 7.0], 4, 1)?;

    // Train the model using the data.
    let history = model.fit(
        &xs,
        &ys,
        FitConfig { epochs: 200, batch_size: 4, verbose: false, ..Default::default() },
    )?;
    println!(
        "trained {} epochs: loss {:.6} -> {:.6}",
        history.loss.len(),
        history.loss[0],
        history.loss.last().expect("at least one epoch")
    );

    // Do inference on an unseen data point and print the result.
    let x = engine.tensor_2d(&[5.0], 1, 1)?;
    let y = model.predict(&x)?;
    y.print();
    println!("expected ~9.0, live tensors: {}", engine.num_tensors());
    Ok(())
}
