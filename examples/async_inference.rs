//! Figures 2 and 3 of the paper, live: on the webgl backend, a blocking
//! `data_sync()` stalls the simulated browser main thread for the whole
//! GPU computation, while the asynchronous `data()` keeps UI frames
//! flowing and resolves when the device finishes.
//!
//! ```text
//! cargo run --release --example async_inference
//! ```

use std::time::Duration;
use webml::core::asyncx::EventLoop;
use webml::prelude::*;

fn main() -> webml::Result<()> {
    let engine = webml::init();
    engine.set_backend("webgl")?;

    // A matmul chain heavy enough to keep the simulated GPU busy a while.
    let a = engine.rand_uniform([192, 192], -1.0, 1.0, 1)?;
    let chain = |a: &Tensor| -> webml::Result<Tensor> {
        let mut y = ops::matmul(a, a, false, false)?;
        for _ in 0..6 {
            y = ops::matmul(&y, a, false, false)?;
        }
        Ok(y)
    };

    let event_loop = EventLoop::new(Duration::from_millis(4));

    // Figure 2: synchronous read — the main thread blocks.
    let (result, sync_report) = event_loop.run_sync(
        || chain(&a).expect("enqueue"),
        |y| y.data_sync(),
        Duration::from_millis(40),
    );
    result?;
    println!("Figure 2 (dataSync): main thread BLOCKED {:.1} ms;", sync_report.blocked_ms);
    println!(
        "  frames rendered: {}, longest frame gap: {:.1} ms",
        sync_report.frames_rendered, sync_report.longest_frame_gap_ms
    );

    // Figure 3: asynchronous read — frames keep flowing while the GPU works.
    let (result, async_report) = event_loop.run_async(
        || {
            let y = chain(&a)?;
            y.data()
        },
        Duration::from_millis(40),
    );
    result?;
    println!("\nFigure 3 (data): main thread blocked {:.1} ms;", async_report.blocked_ms);
    println!(
        "  frames rendered: {}, longest frame gap: {:.1} ms, data ready at {:.1} ms",
        async_report.frames_rendered,
        async_report.longest_frame_gap_ms,
        async_report.data_ready_at_ms
    );

    println!(
        "\njank ratio (sync gap / async gap): {:.1}x",
        sync_report.longest_frame_gap_ms / async_report.longest_frame_gap_ms.max(0.01)
    );
    Ok(())
}
