//! The model-deployment pipeline of paper Sec 5.1/5.2: train a model, save
//! it to the web format (topology JSON + 4 MB weight shards), quantize it
//! for 4x smaller downloads, publish it to a simulated storage bucket, and
//! load it back by URL through a browser-style cache.
//!
//! ```text
//! cargo run --release --example model_deployment
//! ```

use webml::converter::{self, Quantization, SimulatedNetwork};
use webml::models::repo;
use webml::prelude::*;

fn main() -> webml::Result<()> {
    let engine = webml::init();

    // 1. Author and train a model in-library.
    let mut model = Sequential::new(&engine).with_seed(21);
    model.add(Dense::new(64).with_input_dim(32).with_activation(Activation::Relu));
    model.add(Dense::new(64).with_activation(Activation::Relu));
    model.add(Dense::new(4).with_activation(Activation::Softmax));
    model.compile(Loss::CategoricalCrossentropy, Box::new(Adam::new(0.01)));
    let xs = engine.rand_uniform([64, 32], -1.0, 1.0, 5)?;
    let labels = engine.tensor((0..64).map(|i| i % 4).collect::<Vec<i32>>(), [64])?;
    let ys = engine.one_hot(&labels, 4)?;
    model.fit(&xs, &ys, FitConfig { epochs: 3, batch_size: 16, ..Default::default() })?;

    // 2. Convert: full precision vs quantized artifact sizes.
    let full = converter::to_artifacts(&model, None)?;
    let q8 = converter::to_artifacts(&model, Some(Quantization::U8))?;
    let q16 = converter::to_artifacts(&model, Some(Quantization::U16))?;
    println!("weight bytes: full {} | uint16 {} | uint8 {}", full.weight_bytes(), q16.weight_bytes(), q8.weight_bytes());
    println!(
        "reductions:   uint16 {:.1}x, uint8 {:.1}x",
        full.weight_bytes() as f64 / q16.weight_bytes() as f64,
        full.weight_bytes() as f64 / q8.weight_bytes() as f64
    );

    // 3. Publish to a simulated bucket and load by URL.
    let net = SimulatedNetwork::new();
    repo::publish(&model, &net, "https://storage.example.com/my-model")?;
    let mut served = repo::load(&engine, &net, "https://storage.example.com/my-model")?;
    let probe = engine.rand_uniform([1, 32], -1.0, 1.0, 9)?;
    let original = model.predict(&probe)?.to_f32_vec()?;
    let loaded = served.predict(&probe)?.to_f32_vec()?;
    assert_eq!(original, loaded);
    println!("\nfirst load:  {:?}", net.stats());

    // 4. Reload: the browser cache serves every shard.
    let _again = repo::load(&engine, &net, "https://storage.example.com/my-model")?;
    println!("second load: {:?}", net.stats());
    println!("\npredictions from the served model match the original exactly.");
    Ok(())
}
