//! Listing 3 of the paper: the PoseNet wrapper API — pass an image in, get
//! a human-friendly JSON object of named keypoints out. No tensors anywhere
//! in the user-facing flow.
//!
//! ```text
//! cargo run --release --example posenet
//! ```

use webml::prelude::*;

fn main() -> webml::Result<()> {
    let engine = webml::init();

    // The `document.getElementById('person')` stand-in: a synthetic image
    // with a person-like figure.
    let image_element = Image::synthetic_person(192, 192);

    // Estimate a single pose from the image.
    let mut posenet = PoseNet::new(&engine, 128)?;
    let pose = posenet.estimate_single_pose(&image_element)?;

    // Console output, exactly the Listing 3 shape.
    let json = serde_json::to_string_pretty(&pose).expect("pose serializes");
    println!("{json}");

    // A couple of human-readable highlights.
    let best = pose
        .keypoints
        .iter()
        .max_by(|a, b| a.score.total_cmp(&b.score))
        .expect("17 keypoints");
    println!(
        "\nmost confident part: {} at ({:.1}, {:.1}) score {:.2}",
        best.part, best.position.x, best.position.y, best.score
    );
    println!("overall pose score: {:.2}", pose.score);
    Ok(())
}
