//! Train a small convolutional classifier fully in-library on an
//! MNIST-like synthetic dataset — the "author and train models directly"
//! capability the paper calls out as its differentiator from
//! execution-only JS frameworks (Sec 3).
//!
//! ```text
//! cargo run --release --example mnist_training
//! ```

use webml::data::synthetic;
use webml::prelude::*;

fn main() -> webml::Result<()> {
    let engine = webml::init();
    println!("backend: {}", engine.backend_name());

    // 400 synthetic 12x12 "digits" in 5 classes, 80/20 train/val split.
    let dataset = synthetic::mnist_like(400, 5, 12, 7);
    let (train, val) = dataset.split(0.2);
    let (x_train, y_train) = train.to_tensors(&engine)?;
    let (x_val, y_val) = val.to_tensors(&engine)?;

    let mut model = Sequential::new(&engine).with_seed(3);
    model.add(
        Conv2D::new(8, 3)
            .with_strides((2, 2))
            .with_activation(Activation::Relu)
            .with_input_shape([12, 12, 1]),
    );
    model.add(Conv2D::new(16, 3).with_strides((2, 2)).with_activation(Activation::Relu));
    model.add(Flatten::new());
    model.add(Dropout::new(0.1));
    model.add(Dense::new(5).with_activation(Activation::Softmax));
    model.compile_with_metrics(
        Loss::CategoricalCrossentropy,
        Box::new(Adam::new(0.01)),
        vec![Metric::CategoricalAccuracy],
    );
    println!("{}", model.summary());

    let history = model.fit(
        &x_train,
        &y_train,
        FitConfig { epochs: 5, batch_size: 32, verbose: true, ..Default::default() },
    )?;
    if let Some(acc) = history.metrics.get("categorical_accuracy") {
        println!("train accuracy per epoch: {acc:?}");
    }

    let (val_loss, val_metrics) = model.evaluate(&x_val, &y_val)?;
    println!("validation loss {val_loss:.4}, accuracy {:.3}", val_metrics[0]);
    assert!(val_metrics[0] > 0.5, "the synthetic task should be learnable");
    println!("live tensors: {}", engine.num_tensors());
    Ok(())
}
