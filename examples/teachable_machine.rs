//! Teachable-machine-style transfer learning (paper Sec 6.1/5.2): collect
//! webcam frames per class, embed them with a pretrained-style MobileNet,
//! and classify new frames with a KNN over the embeddings — personalized,
//! on-device, no gradient training needed.
//!
//! ```text
//! cargo run --release --example teachable_machine
//! ```

use webml::data::Webcam;
use webml::prelude::*;

fn main() -> webml::Result<()> {
    let engine = webml::init();
    let mut mobilenet = MobileNet::new(
        &engine,
        MobileNetConfig { alpha: 0.25, input_size: 64, classes: 10, batch_norm: false, seed: 1 },
    )?;
    let mut knn = KnnClassifier::new();

    // "Class A": frames from one webcam (one lighting/scene seed);
    // "Class B": frames from another.
    let mut cam_a = Webcam::new(64, 64, 11);
    let mut cam_b = Webcam::new(64, 64, 927);
    println!("collecting 8 examples per class from the webcam...");
    for _ in 0..8 {
        let frame_a = Image::from_rgb(cam_a.capture(), 64, 64)?;
        let emb_a = mobilenet.embed(&frame_a)?;
        knn.add_example(&emb_a, "wave")?;
        emb_a.dispose();
        let frame_b = Image::from_rgb(cam_b.capture(), 64, 64)?;
        let emb_b = mobilenet.embed(&frame_b)?;
        knn.add_example(&emb_b, "thumbs-up")?;
        emb_b.dispose();
    }
    println!("classes: {:?}, examples: {}", knn.labels(), knn.len());

    // Classify fresh frames from both cameras.
    let mut correct = 0;
    let trials = 6;
    for i in 0..trials {
        let (frame, truth) = if i % 2 == 0 {
            (Image::from_rgb(cam_a.capture(), 64, 64)?, "wave")
        } else {
            (Image::from_rgb(cam_b.capture(), 64, 64)?, "thumbs-up")
        };
        let emb = mobilenet.embed(&frame)?;
        let pred = knn.predict(&emb, 5)?;
        emb.dispose();
        let hit = pred.label == truth;
        correct += hit as usize;
        println!(
            "frame {i}: predicted {:<10} (truth {:<10}) confidences {:?}",
            pred.label, truth, pred.confidences
        );
    }
    println!("accuracy: {correct}/{trials}");
    println!(
        "live tensors after session: {} (exactly the model's weight variables)",
        engine.num_tensors()
    );
    Ok(())
}
