//! Fault tolerance: inject a WebGL context loss mid-computation and watch
//! the engine degrade gracefully to the cpu backend — the result is
//! bit-identical to a fault-free run and the only trace is a
//! `DegradationEvent`.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use webml::{ops, Engine, FaultPlan};

fn two_layer(e: &Engine) -> webml::Result<Vec<f32>> {
    let x = e.rand_uniform([12, 16], -1.0, 1.0, 21)?;
    let w1 = e.rand_uniform([16, 10], -1.0, 1.0, 22)?;
    let h = ops::relu(&ops::matmul(&x, &w1, false, false)?)?;
    let w2 = e.rand_uniform([10, 4], -1.0, 1.0, 24)?;
    ops::matmul(&h, &w2, false, false)?.to_f32_vec()
}

fn main() -> webml::Result<()> {
    // Reference: a pristine engine pinned to the cpu backend.
    let reference = webml::new_engine();
    reference.set_backend("cpu")?;
    let want = two_layer(&reference)?;

    // The same graph on an engine whose simulated WebGL context dies at
    // the second draw call.
    let engine = webml::new_engine_with_faults(FaultPlan::none().lose_context_at(2));
    println!("backend before: {}", engine.backend_name());
    let got = two_layer(&engine)?;
    println!("backend after:  {}", engine.backend_name());

    for event in engine.degradation_events() {
        println!(
            "degraded: kernel {} fell back {} -> {} ({})",
            event.kernel, event.from_backend, event.to_backend, event.reason
        );
    }
    let mem = engine.memory();
    println!("degradations: {}, current_backend: {}", mem.degradations, mem.current_backend);
    println!("bit-identical to fault-free cpu run: {}", got == want);

    // Randomly seeded fault schedules are equally invisible.
    for seed in 1..=4 {
        let e = webml::new_engine_with_faults(FaultPlan::from_seed(seed));
        let got = two_layer(&e)?;
        println!(
            "seed {seed}: identical = {}, degradations = {}",
            got == want,
            e.degradations()
        );
    }
    Ok(())
}
