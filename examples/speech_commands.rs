//! On-device audio personalization (paper Sec 2.2): record simulated
//! microphone samples per command, train a small spectrogram classifier
//! fully in-library, and recognize fresh recordings — all data stays "on
//! device".
//!
//! ```text
//! cargo run --release --example speech_commands
//! ```

use webml::data::Microphone;
use webml::models::SpeechCommands;

fn main() -> webml::Result<()> {
    let engine = webml::init();
    let (frames, bins) = (6usize, 8usize);
    let commands = ["yes", "no", "stop", "go"];
    let mut recognizer = SpeechCommands::new(&engine, &commands, frames, bins)?;

    // Collect 8 recordings per command from the simulated microphone.
    let mut mic = Microphone::new(16_000, 21);
    let mut examples = Vec::new();
    let mut labels = Vec::new();
    for (class, name) in commands.iter().enumerate() {
        for _ in 0..8 {
            examples.push(mic.spectrogram(class, frames, bins));
            labels.push(class);
        }
        println!("recorded 8 samples of '{name}'");
    }

    let accuracy = recognizer.train(&examples, &labels, 15)?;
    println!("\ntrained: final training accuracy {accuracy:.2}\n");

    // Recognize fresh recordings.
    let mut hits = 0;
    for (class, name) in commands.iter().enumerate() {
        let spec = mic.spectrogram(class, frames, bins);
        let ranked = recognizer.recognize(&spec)?;
        let hit = ranked[0].command == *name;
        hits += hit as usize;
        println!(
            "said '{name}' -> heard '{}' ({:.0}%) {}",
            ranked[0].command,
            ranked[0].probability * 100.0,
            if hit { "ok" } else { "MISS" }
        );
    }
    println!("\nrecognized {hits}/{} fresh recordings", commands.len());
    println!("all audio stayed on device; live tensors: {}", engine.num_tensors());
    Ok(())
}
