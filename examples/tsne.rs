//! t-SNE on the ops API (paper Sec 6.4, the tfjs-tsne use case):
//! dimensionality-reduce three 8-D Gaussian clusters to 2-D and draw the
//! embedding as an ASCII scatter plot.
//!
//! ```text
//! cargo run --release --example tsne
//! ```

use webml::models::tsne::{tsne, TsneConfig};

fn main() -> webml::Result<()> {
    let engine = webml::init();
    println!("backend: {}\n", engine.backend_name());

    // Three clusters in 8 dimensions, 20 points each.
    let (d, per) = (8usize, 20usize);
    let mut data = Vec::new();
    let mut state = 99u64;
    let mut rand = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    };
    for c in 0..3usize {
        for _ in 0..per {
            for k in 0..d {
                let center = if k % 3 == c { 8.0 } else { 0.0 };
                data.push(center + rand());
            }
        }
    }
    let n = 3 * per;

    let embedding = tsne(
        &engine,
        &data,
        n,
        d,
        TsneConfig { iterations: 400, perplexity: 10.0, learning_rate: 10.0, ..Default::default() },
    )?;

    // ASCII scatter.
    let (width, height) = (64usize, 24usize);
    let xs: Vec<f32> = embedding.iter().step_by(2).copied().collect();
    let ys: Vec<f32> = embedding.iter().skip(1).step_by(2).copied().collect();
    let (min_x, max_x) = bounds(&xs);
    let (min_y, max_y) = bounds(&ys);
    let mut grid = vec![vec![' '; width]; height];
    let glyphs = ['o', 'x', '+'];
    for i in 0..n {
        let gx = (((xs[i] - min_x) / (max_x - min_x).max(1e-6)) * (width - 1) as f32) as usize;
        let gy = (((ys[i] - min_y) / (max_y - min_y).max(1e-6)) * (height - 1) as f32) as usize;
        grid[gy][gx] = glyphs[i / per];
    }
    println!("t-SNE embedding of 3 clusters (o / x / +):\n");
    for row in grid {
        println!("  {}", row.into_iter().collect::<String>());
    }
    println!("\n{n} points embedded; live tensors: {}", engine.num_tensors());
    Ok(())
}

fn bounds(v: &[f32]) -> (f32, f32) {
    let min = v.iter().copied().fold(f32::INFINITY, f32::min);
    let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    (min, max)
}
